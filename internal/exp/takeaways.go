package exp

import (
	"fmt"

	"pacram/internal/bender"
	"pacram/internal/characterize"
	"pacram/internal/chips"
	pacram "pacram/internal/core"
	"pacram/internal/mitigation"
	"pacram/internal/sim"
	"pacram/internal/trace"
)

// Takeaways re-verifies the paper's eight takeaways end-to-end and
// reports the measured evidence for each. It is the narrative
// companion to cmd/artifact's four formal claims.
func Takeaways(co CharOptions, so SysOptions) (*Table, error) {
	t := &Table{
		ID:      "takeaways",
		Title:   "The paper's eight takeaways, re-verified",
		Columns: []string{"takeaway", "paper statement", "measured evidence", "holds"},
	}

	meas := func(id string, factor float64, npr int, temp float64) (float64, error) {
		m, err := chips.ByID(id)
		if err != nil {
			return 0, err
		}
		res, err := characterize.MeasureModule(m, co.deviceOptions(), factor, npr, temp, co.Rows, co.config())
		if err != nil {
			return 0, err
		}
		nom, err := characterize.MeasureModule(m, co.deviceOptions(), 1.0, 1, temp, co.Rows, co.config())
		if err != nil {
			return 0, err
		}
		lo, any := res.LowestNRH()
		loNom, anyNom := nom.LowestNRH()
		if !any || !anyNom || loNom == 0 {
			return 0, nil
		}
		return float64(lo) / float64(loNom), nil
	}

	// T1: charge restoration latency can be reduced to a safe minimum
	// without affecting NRH.
	r, err := meas("H5", 0.36, 1, 80)
	if err != nil {
		return nil, err
	}
	t.AddRow("T1", "tRAS reducible to a safe minimum without affecting NRH",
		fmt.Sprintf("H5 lowest NRH at 0.36 tRAS = %.2fx nominal", r), verdict(r >= 0.95))

	// T2: ...without significantly affecting the lowest observed NRH.
	r, err = meas("M2", 0.27, 1, 80)
	if err != nil {
		return nil, err
	}
	t.AddRow("T2", "lowest observed NRH robust at mfr-specific safe latencies",
		fmt.Sprintf("M2 lowest NRH at 0.27 tRAS = %.2fx nominal", r), verdict(r >= 0.97))

	// T3: BER does not grow significantly at the safe minimum.
	berRatio, err := berAt(co, "H5", 0.36)
	if err != nil {
		return nil, err
	}
	t.AddRow("T3", "BER not significantly increased at the safe minimum",
		fmt.Sprintf("H5 mean BER at 0.36 tRAS = %.2fx nominal", berRatio), verdict(berRatio <= 1.05))

	// T4: temperature does not change the effect.
	cold, err := meas("S6", 0.45, 1, 50)
	if err != nil {
		return nil, err
	}
	hot, err := meas("S6", 0.45, 1, 80)
	if err != nil {
		return nil, err
	}
	diff := cold - hot
	if diff < 0 {
		diff = -diff
	}
	t.AddRow("T4", "temperature has no significant impact on the latency effect",
		fmt.Sprintf("S6@0.45 normalized NRH differs by %.3f between 50C and 80C", diff), verdict(diff <= 0.05))

	// T5: reduced latency is safe for many consecutive refreshes.
	r, err = meas("H7", 0.36, 15000, 80)
	if err != nil {
		return nil, err
	}
	t.AddRow("T5", "reduced latency safe for many consecutive preventive refreshes",
		fmt.Sprintf("H7 lowest NRH after 15K restores at 0.36 tRAS = %.2fx nominal", r), verdict(r >= 0.95))

	// T6: no data-retention failures at the safe minimum.
	frac, err := retentionAt(co, "S6", 0.45)
	if err != nil {
		return nil, err
	}
	t.AddRow("T6", "no retention failures at the safe minimum within tREFW",
		fmt.Sprintf("S6 retention-failure fraction at 0.45 tRAS, 64ms = %.3f", frac), verdict(frac == 0))

	// T7/T8: PaCRAM improves performance and energy.
	spec, err := trace.SpecByName("429.mcf")
	if err != nil {
		return nil, err
	}
	run := func(cfg *pacram.Config) (sim.Result, error) {
		o := sim.DefaultOptions(spec)
		o.MemCfg = so.MemCfg()
		o.Instructions = so.Instructions
		o.Warmup = so.Warmup
		o.Mitigation = mitigation.NameRFM
		o.NRH = 64
		o.PaCRAM = cfg
		o.Seed = so.Seed
		return sim.Run(o)
	}
	mod, err := chips.ByID("H5")
	if err != nil {
		return nil, err
	}
	cfg, err := pacram.Derive(mod, 4, 64, sim.SmallMemConfig().Timing)
	if err != nil {
		return nil, err
	}
	noPac, err := run(nil)
	if err != nil {
		return nil, err
	}
	withPac, err := run(&cfg)
	if err != nil {
		return nil, err
	}
	dPerf := 100 * (withPac.IPC[0]/noPac.IPC[0] - 1)
	t.AddRow("T7", "PaCRAM significantly improves system performance",
		fmt.Sprintf("RFM@64 + PaCRAM-H: %+.2f%% IPC", dPerf), verdict(dPerf > 0))
	dEnergy := 100 * (withPac.Energy.Total()/noPac.Energy.Total() - 1)
	t.AddRow("T8", "PaCRAM significantly reduces DRAM energy",
		fmt.Sprintf("RFM@64 + PaCRAM-H: %+.2f%% DRAM energy", dEnergy), verdict(dEnergy < 0))
	return t, nil
}

func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// berAt returns the mean BER at the given factor normalized to nominal
// across sampled rows of the module.
func berAt(co CharOptions, id string, factor float64) (float64, error) {
	m, err := chips.ByID(id)
	if err != nil {
		return 0, err
	}
	_, bers, err := normalizedPerRow(co.serialCharRun(), m, factor, 1, 80)
	if err != nil {
		return 0, err
	}
	if len(bers) == 0 {
		return 0, fmt.Errorf("exp: no BER samples for %s", id)
	}
	sum := 0.0
	for _, b := range bers {
		sum += b
	}
	return sum / float64(len(bers)), nil
}

// retentionAt measures the retention-failure fraction at (factor, 64ms,
// 1 restore).
func retentionAt(co CharOptions, id string, factor float64) (float64, error) {
	m, err := chips.ByID(id)
	if err != nil {
		return 0, err
	}
	pl, err := bender.New(m.NewChip(co.deviceOptions()), co.Seed)
	if err != nil {
		return 0, err
	}
	pl.SetTemperature(80)
	rows := characterize.SelectRows(pl, co.Rows)
	res, err := characterize.MeasureRetentionModule(pl, id, rows, factor, 1, 64)
	if err != nil {
		return 0, err
	}
	return res.FailFraction(), nil
}
