// Package exp contains one driver per table and figure of the paper's
// evaluation. Each driver runs the corresponding experiment at a
// configurable scale and renders the same rows/series the paper
// reports, as aligned text and CSV. The experiment index, with the
// command and expected runtime per figure, lives in the top-level
// README.md. Sweep execution (worker pool, caching, progress) is
// delegated to internal/runner.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic result table: the unit every driver returns.
type Table struct {
	ID      string // experiment id, e.g. "fig6", "table3"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := printRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the table as CSV (simple quoting: cells are
// controlled strings without commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
