// Command simulate runs the system-level experiments of the paper
// (Figs. 3 and 16-19, plus the §8.4 area report): trace-driven cores
// over the DDR5 memory system with the five RowHammer mitigation
// mechanisms, with and without PaCRAM.
//
// Examples:
//
//	simulate -exp fig3                      # preventive-refresh overhead sweep
//	simulate -exp fig17 -nrh 1024,256,64    # performance vs threshold
//	simulate -exp fig16 -workloads 429.mcf -mitigations RFM
//	simulate -exp all -csv out/ -parallel 8 -cache .pacram-cache
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"

	"pacram/internal/exp"
	"pacram/internal/mitigation"
	"pacram/internal/sim"
	"pacram/internal/trace"
)

var experiments = []string{"fig3", "fig16", "fig17", "fig18", "fig19", "area", "run", "takeaways"}

func main() {
	// All work happens in realMain so its defers — above all the CPU
	// profile flush — also run on error paths; os.Exit would skip them.
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "simulate: %v\n", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		expFlag   = flag.String("exp", "fig3", "experiment id, comma-separated list, or 'all': "+strings.Join(experiments, " "))
		insts     = flag.Uint64("insts", 60_000, "instructions per core (paper: 100M)")
		warmup    = flag.Uint64("warmup", 6_000, "warmup instructions per core (paper: 10M)")
		nrhs      = flag.String("nrh", "1024,256,64", "RowHammer thresholds to simulate")
		mixes     = flag.Int("mixes", 3, "number of 4-core mixes (paper: 60)")
		workloads = flag.String("workloads", "", "comma-separated single-core workloads (default: representative six)")
		mechs     = flag.String("mitigations", "", "comma-separated mechanisms (default: all five)")
		channels  = flag.Int("channels", 0, "memory channels, each with its own controller and mitigation instance (0 = paper default 1; supported: 1 2 4 8)")
		ranks     = flag.Int("ranks", 0, "ranks per channel (0 = paper default 2; supported: 1 2 4 8)")
		traceFile = flag.String("tracefile", "", "replay a trace file on one core (with -exp run)")
		seed      = flag.Uint64("seed", 0x51317, "simulation seed")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV files")
		parallel  = flag.Int("parallel", 0, "worker pool size (0 = all CPUs); results are identical at any value")
		cacheDir  = flag.String("cache", "", "cache completed cells as JSON in this directory; re-runs skip them")
		storeURL  = flag.String("store", "", "also read/write cells on a pacramd cache origin at this URL")
		quiet     = flag.Bool("quiet", false, "suppress progress/ETA output on stderr")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		profile   = flag.Bool("profile", false, "with -tracefile: attribute simulated work per layer (sim.Options.Profile)")
	)
	flag.Parse()

	// Profile attribution is a property of one direct sim.Run; the table
	// experiments run cells through the result cache, where a profiled
	// and an unprofiled run are deliberately the same entry.
	if *profile && *traceFile == "" {
		return fmt.Errorf("-profile requires -tracefile (experiments cache per-cell results; profile wall-time attribution is per direct run)")
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	// Reject bad geometry up front, like -mitigation typos: a bad value
	// would otherwise surface deep inside sim.Run, after valid cells.
	for _, f := range []struct {
		name string
		v    int
	}{{"channels", *channels}, {"ranks", *ranks}} {
		if f.v < 0 || f.v > 8 || (f.v > 0 && f.v&(f.v-1) != 0) {
			return fmt.Errorf("bad -%s %d: must be a power of two in 1..8 (0 keeps the paper default)", f.name, f.v)
		}
	}

	opt := exp.DefaultSysOptions()
	opt.Channels = *channels
	opt.Ranks = *ranks
	opt.Instructions = *insts
	opt.Warmup = *warmup
	opt.MixCount = *mixes
	opt.Seed = *seed
	opt.Parallel = *parallel
	opt.CacheDir = *cacheDir
	opt.StoreURL = *storeURL
	opt.Progress = progress
	if *workloads != "" {
		opt.Workloads = strings.Split(*workloads, ",")
	}
	if *mechs != "" {
		opt.Mitigations = strings.Split(*mechs, ",")
		// Reject typos up front: a bad name would otherwise surface
		// deep inside sim.Run, after minutes of valid cells.
		for _, m := range opt.Mitigations {
			if !mitigation.Known(m) {
				return fmt.Errorf("unknown mitigation %q (valid: %s, None)",
					m, strings.Join(mitigation.AllNames(), ", "))
			}
		}
	}
	opt.NRHs = opt.NRHs[:0]
	for _, s := range strings.Split(*nrhs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad NRH %q", s)
		}
		opt.NRHs = append(opt.NRHs, v)
	}

	if *traceFile != "" {
		return runTraceFile(*traceFile, opt, *profile)
	}

	ids := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		ids = experiments
	}
	for _, id := range ids {
		tbl, err := runExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			return fmt.Errorf("%s: %v", id, err)
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				return err
			}
		}
	}
	return nil
}

func runExperiment(id string, opt exp.SysOptions) (*exp.Table, error) {
	switch id {
	case "fig3":
		return exp.Fig3(opt)
	case "fig16":
		return exp.Fig16(opt)
	case "fig17":
		return exp.Fig17(opt)
	case "fig18":
		return exp.Fig18(opt)
	case "fig19":
		return exp.Fig19(opt)
	case "area":
		return exp.AreaReport(), nil
	case "run":
		return exp.RunTable(opt)
	case "takeaways":
		return exp.Takeaways(exp.DefaultCharOptions(), opt)
	}
	return nil, fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(experiments, " "))
}

// runTraceFile replays a trace file on a single core and prints the
// detailed statistics; with profile, also the per-layer attribution of
// where simulated and wall-clock time went.
func runTraceFile(path string, o exp.SysOptions, profile bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := trace.ReadRecords(f)
	if err != nil {
		return err
	}
	gen, err := trace.NewReplay(path, recs)
	if err != nil {
		return err
	}
	sopt := sim.DefaultOptions()
	sopt.Generators = []trace.Generator{gen}
	sopt.MemCfg = o.MemCfg()
	sopt.Instructions = o.Instructions
	sopt.Warmup = o.Warmup
	sopt.NRH = o.NRHs[0]
	if len(o.Mitigations) == 1 {
		sopt.Mitigation = o.Mitigations[0]
	}
	sopt.Profile = profile
	res, err := sim.Run(sopt)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s (%d records): IPC %.4f, %d reads, %d writes, %d ACTs, prev-ref busy %.3f%%, energy %.3g J\n",
		path, len(recs), res.IPC[0], res.Stats.Reads, res.Stats.Writes,
		res.Stats.Acts, 100*res.PrevRefBusyFraction, res.Energy.Total())
	if p := res.Profile; p != nil {
		fmt.Printf("profile (%s engine): %d cycles in %d steps", p.Engine, p.SimCycles, p.Steps)
		if p.Leaps > 0 {
			fmt.Printf(" + %d leaps covering %d cycles (%.1f%%)",
				p.Leaps, p.LeapCycles, 100*float64(p.LeapCycles)/float64(p.SimCycles))
		}
		fmt.Printf("\n  cores: %d ticks, %d stall-skips, %.1fms; controller: %.1fms; wall %.1fms (%.2fM cycles/s)\n",
			p.CoreTicks, p.CoreStallSkips, float64(p.CoreNanos)/1e6,
			float64(p.CtrlNanos)/1e6, float64(p.WallNanos)/1e6, p.CyclesPerSecond/1e6)
		if p.Windows > 0 {
			fmt.Printf("  windows: %d (%d parallel) covering %d cycles, %d channel ticks over %d channel-advances, %.1fms (merge %.2fms)\n",
				p.Windows, p.ParallelWindows, p.WindowCycles,
				p.WindowChannelTicks, p.WindowChannelsAdvanced,
				float64(p.WindowNanos)/1e6, float64(p.MergeNanos)/1e6)
		}
		fmt.Printf("  commands: %d refreshes, %d RFMs, %d preventive refreshes\n",
			p.Refreshes, p.RFMs, p.PreventiveRefreshes)
	}
	return nil
}

func writeCSV(dir string, tbl *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
