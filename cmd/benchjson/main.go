// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON, so benchmark results can be tracked across
// commits instead of eyeballed in CI logs.
//
// Usage:
//
//	go test -bench BenchmarkControllerThroughput -run '^$' . | \
//	    go run ./cmd/benchjson -out BENCH_controller.json
//
// The output maps each benchmark to its iteration count, ns/op and any
// extra ReportMetric values:
//
//	{
//	  "goos": "linux", "goarch": "amd64",
//	  "benchmarks": [
//	    {"name": "BenchmarkControllerThroughput-8",
//	     "iterations": 21298110, "nsPerOp": 56.19}
//	  ]
//	}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"nsPerOp"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text output. Benchmark lines look like
//
//	BenchmarkName-8   123456   98.7 ns/op   1.25 %busy
//
// while goos/goarch/pkg header lines carry the environment.
func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	return r, sc.Err()
}
