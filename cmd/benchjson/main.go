// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON, so benchmark results can be tracked across
// commits instead of eyeballed in CI logs.
//
// Usage:
//
//	go test -bench BenchmarkControllerThroughput -run '^$' . | \
//	    go run ./cmd/benchjson -out BENCH_controller.json
//
// The output maps each benchmark to its iteration count, ns/op, the
// -benchmem allocation columns when present (B/op, allocs/op) and any
// extra ReportMetric values:
//
//	{
//	  "goos": "linux", "goarch": "amd64",
//	  "benchmarks": [
//	    {"name": "BenchmarkControllerThroughput-8",
//	     "iterations": 21298110, "nsPerOp": 56.19,
//	     "bytesPerOp": 0, "allocsPerOp": 0}
//	  ]
//	}
//
// With -compare BASELINE.json the parsed results are additionally
// checked against a previously committed report: any benchmark whose
// ns/op — or B/op or allocs/op, when the baseline recorded them —
// regressed by more than -tolerance (default 0.20 = 20%) fails the
// run with exit status 1 — the CI regression gate. A baseline without
// allocation columns gates only ns/op, so re-baselining with -benchmem
// is opt-in per report. Names are matched with the trailing
// -GOMAXPROCS suffix stripped, so reports from machines with
// different core counts compare cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. BytesPerOp and AllocsPerOp are
// pointers so a report records the difference between "measured zero
// allocations" and "ran without -benchmem".
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  *float64           `json:"bytesPerOp,omitempty"`
	AllocsPerOp *float64           `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline report to diff against; regressions fail the run")
	tolerance := flag.Float64("tolerance", 0.20, "allowed ns/op regression vs the baseline (fraction)")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		baseData, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(baseData, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compare, err)
			os.Exit(1)
		}
		regressions := diff(report, &base, *tolerance)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% vs %s\n", *tolerance*100, *compare)
	}
}

// trimProcs strips the trailing -GOMAXPROCS suffix from a benchmark
// name so reports from different machines compare by shape.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diff returns a description of every benchmark in cur whose ns/op —
// or B/op or allocs/op, when both sides recorded them — exceeds its
// baseline counterpart by more than the tolerance, plus every baseline
// benchmark missing from cur — a bench that silently stopped running
// must not read as "no regressions". Benchmarks absent from the
// baseline pass (new benches must not fail the gate that predates
// them), and a baseline without allocation columns gates only ns/op.
// A baseline of exactly zero is an exact contract, not a ratio — a
// zero-alloc hot path stays zero-alloc — so any nonzero value against
// it is a regression no tolerance can excuse.
func diff(cur, base *Report, tolerance float64) []string {
	current := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		current[trimProcs(b.Name)] = b
	}
	var out []string
	check := func(name, unit string, got, want float64) {
		switch {
		case want == 0 && got > 0:
			out = append(out, fmt.Sprintf("%s: %.0f %s vs zero baseline (zero is exact; no tolerance)",
				name, got, unit))
		case want > 0 && got > want*(1+tolerance):
			out = append(out, fmt.Sprintf("%s: %.0f %s vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				name, got, unit, want, 100*(got/want-1), tolerance*100))
		}
	}
	for _, b := range base.Benchmarks {
		name := trimProcs(b.Name)
		got, ok := current[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but missing from this run", name))
			continue
		}
		check(name, "ns/op", got.NsPerOp, b.NsPerOp)
		if b.BytesPerOp != nil && got.BytesPerOp != nil {
			check(name, "B/op", *got.BytesPerOp, *b.BytesPerOp)
		}
		if b.AllocsPerOp != nil && got.AllocsPerOp != nil {
			check(name, "allocs/op", *got.AllocsPerOp, *b.AllocsPerOp)
		}
	}
	return out
}

// parse reads `go test -bench` text output. Benchmark lines look like
//
//	BenchmarkName-8   123456   98.7 ns/op   1.25 %busy
//
// while goos/goarch/pkg header lines carry the environment.
func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			r.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			r.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			r.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			unit := fields[i+1]
			switch unit {
			case "ns/op":
				b.NsPerOp = v
				continue
			case "B/op":
				b.BytesPerOp = &v
				continue
			case "allocs/op":
				b.AllocsPerOp = &v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
		r.Benchmarks = append(r.Benchmarks, b)
	}
	return r, sc.Err()
}
