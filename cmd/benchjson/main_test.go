package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pacram
BenchmarkSimRun/fig17-small/event-horizon-8   	 100	 4000000 ns/op	 41453 simCycles
BenchmarkSimRun/fig17-small/per-cycle-8       	  80	 6000000 ns/op	 41453 simCycles
PASS
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	r, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParse(t *testing.T) {
	r := parseSample(t, sample)
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "pacram" {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkSimRun/fig17-small/event-horizon-8" ||
		b.Iterations != 100 || b.NsPerOp != 4e6 || b.Metrics["simCycles"] != 41453 {
		t.Fatalf("benchmark 0: %+v", b)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo-16":         "BenchmarkFoo",
		"BenchmarkFoo/sub-case-4": "BenchmarkFoo/sub-case",
		"BenchmarkFoo/sub-case":   "BenchmarkFoo/sub-case",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiff(t *testing.T) {
	base := parseSample(t, sample)
	// Same numbers measured on a different core count: no regression.
	cur := parseSample(t, strings.ReplaceAll(sample, "-8 ", "-4 "))
	if regs := diff(cur, base, 0.20); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// 50% slower event-horizon engine: gate trips for that bench only.
	slow := parseSample(t, strings.Replace(sample, " 4000000 ns/op", " 6000000 ns/op", 1))
	regs := diff(slow, base, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "event-horizon") {
		t.Fatalf("want one event-horizon regression, got %v", regs)
	}
	// A brand-new benchmark without a baseline entry passes.
	extra := parseSample(t, sample+"BenchmarkNew-8  10  1 ns/op\n")
	if regs := diff(extra, base, 0.20); len(regs) != 0 {
		t.Fatalf("new benchmark tripped the gate: %v", regs)
	}
	// A baseline benchmark that vanished from the run fails the gate.
	partial := parseSample(t, strings.SplitAfter(sample, "simCycles\n")[0])
	regs = diff(partial, base, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing from this run") {
		t.Fatalf("want one missing-benchmark failure, got %v", regs)
	}
}
