package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: pacram
BenchmarkSimRun/fig17-small/event-horizon-8   	 100	 4000000 ns/op	 41453 simCycles
BenchmarkSimRun/fig17-small/per-cycle-8       	  80	 6000000 ns/op	 41453 simCycles
PASS
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	r, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParse(t *testing.T) {
	r := parseSample(t, sample)
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "pacram" {
		t.Fatalf("header: %+v", r)
	}
	if len(r.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkSimRun/fig17-small/event-horizon-8" ||
		b.Iterations != 100 || b.NsPerOp != 4e6 || b.Metrics["simCycles"] != 41453 {
		t.Fatalf("benchmark 0: %+v", b)
	}
}

const memSample = `goos: linux
goarch: amd64
pkg: pacram
BenchmarkSimRun/fig17-small/event-horizon-8   	 100	 4000000 ns/op	 41453 simCycles	 2048 B/op	 12 allocs/op
PASS
`

// TestParseBenchmem covers the -benchmem columns: B/op and allocs/op
// land in their dedicated fields, not in Metrics, and a run without
// -benchmem leaves them nil rather than zero.
func TestParseBenchmem(t *testing.T) {
	r := parseSample(t, memSample)
	if len(r.Benchmarks) != 1 {
		t.Fatalf("want 1 benchmark, got %d", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.BytesPerOp == nil || *b.BytesPerOp != 2048 {
		t.Fatalf("bytesPerOp: %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Fatalf("allocsPerOp: %+v", b)
	}
	if b.NsPerOp != 4e6 || b.Metrics["simCycles"] != 41453 {
		t.Fatalf("other fields disturbed: %+v", b)
	}
	if _, ok := b.Metrics["B/op"]; ok {
		t.Fatal("B/op leaked into Metrics")
	}

	plain := parseSample(t, sample)
	if plain.Benchmarks[0].BytesPerOp != nil || plain.Benchmarks[0].AllocsPerOp != nil {
		t.Fatalf("run without -benchmem reports allocation columns: %+v", plain.Benchmarks[0])
	}
}

// TestDiffBenchmem gates the allocation columns: a B/op or allocs/op
// regression beyond tolerance fails even at unchanged ns/op, and a
// baseline without the columns gates only ns/op.
func TestDiffBenchmem(t *testing.T) {
	base := parseSample(t, memSample)
	if regs := diff(parseSample(t, memSample), base, 0.20); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
	moreBytes := parseSample(t, strings.Replace(memSample, " 2048 B/op", " 4096 B/op", 1))
	regs := diff(moreBytes, base, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "B/op") {
		t.Fatalf("want one B/op regression, got %v", regs)
	}
	moreAllocs := parseSample(t, strings.Replace(memSample, " 12 allocs/op", " 20 allocs/op", 1))
	regs = diff(moreAllocs, base, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
	// Old baseline (no -benchmem) against a new -benchmem run: only
	// ns/op is gated, so the allocation columns cannot trip it.
	oldBase := parseSample(t, strings.SplitAfter(sample, "simCycles\n")[0])
	if regs := diff(moreBytes, oldBase, 0.20); len(regs) != 0 {
		t.Fatalf("memless baseline gated allocation columns: %v", regs)
	}
	// A zero baseline is exact: one alloc against 0 allocs/op fails,
	// tolerance notwithstanding — the zero-alloc hot path must stay
	// zero-alloc (a ratio gate would wave anything through, since
	// every value is within 20% of zero times 1.2).
	zeroBase := parseSample(t, strings.Replace(memSample, " 12 allocs/op", " 0 allocs/op", 1))
	oneAlloc := parseSample(t, strings.Replace(memSample, " 12 allocs/op", " 1 allocs/op", 1))
	regs = diff(oneAlloc, zeroBase, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "zero baseline") {
		t.Fatalf("want one zero-baseline regression, got %v", regs)
	}
	if regs := diff(zeroBase, zeroBase, 0.20); len(regs) != 0 {
		t.Fatalf("zero vs zero regressed: %v", regs)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":          "BenchmarkFoo",
		"BenchmarkFoo-16":         "BenchmarkFoo",
		"BenchmarkFoo/sub-case-4": "BenchmarkFoo/sub-case",
		"BenchmarkFoo/sub-case":   "BenchmarkFoo/sub-case",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDiff(t *testing.T) {
	base := parseSample(t, sample)
	// Same numbers measured on a different core count: no regression.
	cur := parseSample(t, strings.ReplaceAll(sample, "-8 ", "-4 "))
	if regs := diff(cur, base, 0.20); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// 50% slower event-horizon engine: gate trips for that bench only.
	slow := parseSample(t, strings.Replace(sample, " 4000000 ns/op", " 6000000 ns/op", 1))
	regs := diff(slow, base, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "event-horizon") {
		t.Fatalf("want one event-horizon regression, got %v", regs)
	}
	// A brand-new benchmark without a baseline entry passes.
	extra := parseSample(t, sample+"BenchmarkNew-8  10  1 ns/op\n")
	if regs := diff(extra, base, 0.20); len(regs) != 0 {
		t.Fatalf("new benchmark tripped the gate: %v", regs)
	}
	// A baseline benchmark that vanished from the run fails the gate.
	partial := parseSample(t, strings.SplitAfter(sample, "simCycles\n")[0])
	regs = diff(partial, base, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing from this run") {
		t.Fatalf("want one missing-benchmark failure, got %v", regs)
	}
}
