// Command pacramd is the sweep service daemon: a long-running HTTP
// server that accepts scenario submissions (built-in catalog names or
// inline JSON specs), executes them on one shared bounded worker pool
// with one shared content-addressed result store, and serves job
// status, per-cell progress (SSE) and finished metric tables in the
// exact bytes the scenario CLI emits. Identical cells across
// concurrent submissions — shared baselines above all — are simulated
// exactly once.
//
// Usage:
//
//	pacramd [-addr :8793] [-parallel N] [-cache DIR] [-store URL]
//	        [-mem-store MB] [-drain-timeout 2m] [-log-level info]
//	        [-trace DIR]
//
// Logs are structured (log/slog text format) on stderr; -log-level
// takes debug, info, warn or error. -trace records one span-tree trace
// file per job as DIR/<jobID>.trace.jsonl — summarize with
// cmd/tracetool. The telemetry registry (pool, store, job, SSE series)
// is served in Prometheus text exposition at GET /metrics and as JSON
// at GET /api/v1/metrics.
//
// The HTTP API is documented in the top-level README; cmd/scenario's
// -remote flag is the reference client:
//
//	pacramd -cache /var/cache/pacram &
//	scenario run fig17 -remote http://localhost:8793
//
// Every daemon also doubles as a result-store cache origin
// (GET/PUT /api/v1/store/{hash}): point another daemon's -store, or a
// CLI run's -store, at this daemon's base URL to share finished cells
// across machines and processes of the same build.
//
// On SIGINT/SIGTERM the server drains: new submissions are rejected
// with 503 while running jobs finish (bounded by -drain-timeout), then
// the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pacram/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8793", "listen address")
		parallel     = flag.Int("parallel", 0, "shared worker pool size across all jobs (0 = all CPUs)")
		cacheDir     = flag.String("cache", "", "result store directory (default: a private temp dir)")
		storeURL     = flag.String("store", "", "remote result-store origin URL (another pacramd) behind the disk tier")
		memStoreMB   = flag.Int64("mem-store", 256, "in-memory result-store tier size in MB (0 disables the tier)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long to wait for running jobs on shutdown")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceDir     = flag.String("trace", "", "record one span-tree trace file per job in this directory (see cmd/tracetool)")
	)
	flag.Parse()
	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pacramd: %v\n", err)
		os.Exit(2)
	}
	if err := run(*addr, *parallel, *cacheDir, *storeURL, *traceDir, *memStoreMB, *drainTimeout, level); err != nil {
		fmt.Fprintf(os.Stderr, "pacramd: %v\n", err)
		os.Exit(1)
	}
}

// parseLevel maps the -log-level flag to a slog level; unknown names
// fail loudly rather than silently defaulting.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (have: debug info warn error)", s)
}

func run(addr string, parallel int, cacheDir, storeURL, traceDir string, memStoreMB int64, drainTimeout time.Duration, level slog.Level) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	memBytes := memStoreMB << 20
	if memStoreMB <= 0 {
		memBytes = -1 // Config: negative disables the mem tier
	}
	srv, err := service.New(service.Config{
		Workers:       parallel,
		CacheDir:      cacheDir,
		StoreURL:      storeURL,
		MemStoreBytes: memBytes,
		Logger:        logger,
		TraceDir:      traceDir,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "workers", srv.Workers(), "store", srv.StoreDir())
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		logger.Info("received signal, draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if drainErr != nil {
		logger.Error("drain failed", "err", drainErr)
	}
	// The drain may have consumed its whole budget; in-flight HTTP
	// responses (a table fetch, an SSE subscriber) still get their own
	// grace window to complete.
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && drainErr == nil {
		return fmt.Errorf("shutdown: %w", err)
	} else if err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if err := <-errCh; err != nil && drainErr == nil {
		return err
	}
	if drainErr == nil {
		// Drained clean: a private temp store has no further use. An
		// abandoned drain skips this — its jobs still write there.
		if err := srv.Close(); err != nil {
			logger.Warn("removing result store", "err", err)
		}
	}
	// A timed-out drain abandoned running jobs; exit nonzero with that
	// as the cause — it subsumes any secondary shutdown timeout (an
	// SSE subscriber to an abandoned job keeps its handler open).
	return drainErr
}
