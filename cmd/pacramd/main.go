// Command pacramd is the sweep service daemon: a long-running HTTP
// server that accepts scenario submissions (built-in catalog names or
// inline JSON specs), executes them on one shared bounded worker pool
// with one shared content-addressed result store, and serves job
// status, per-cell progress (SSE) and finished metric tables in the
// exact bytes the scenario CLI emits. Identical cells across
// concurrent submissions — shared baselines above all — are simulated
// exactly once.
//
// Usage:
//
//	pacramd [-addr :8793] [-parallel N] [-cache DIR] [-store URL]
//	        [-mem-store MB] [-drain-timeout 2m] [-log-level info]
//	        [-trace DIR] [-coordinator URL] [-advertise URL]
//	        [-worker-name NAME] [-heartbeat D]
//
// Logs are structured (log/slog text format) on stderr; -log-level
// takes debug, info, warn or error. -trace records one span-tree trace
// file per job as DIR/<jobID>.trace.jsonl — summarize with
// cmd/tracetool. The telemetry registry (pool, store, job, SSE series)
// is served in Prometheus text exposition at GET /metrics and as JSON
// at GET /api/v1/metrics.
//
// The HTTP API is documented in the top-level README; cmd/scenario's
// -remote flag is the reference client:
//
//	pacramd -cache /var/cache/pacram &
//	scenario run fig17 -remote http://localhost:8793
//
// Every daemon also doubles as a result-store cache origin
// (GET/PUT /api/v1/store/{hash}): point another daemon's -store, or a
// CLI run's -store, at this daemon's base URL to share finished cells
// across machines and processes of the same build.
//
// -coordinator turns the daemon into a sweep-fabric worker: it
// registers with the coordinator daemon at the given URL (advertising
// -advertise, default http://localhost<addr>) and executes cells the
// coordinator dispatches to it, alongside any local submissions it
// receives directly. Unless -store is set explicitly, a worker mounts
// its coordinator as its remote store tier, so results it computes
// land fleet-visible. The coordinator is just a daemon with workers
// attached — any pacramd accepts registrations.
//
// On SIGINT/SIGTERM the server drains: a worker first leaves the fleet
// (new dispatches are answered 503 and remap to other workers), then
// new submissions are rejected with 503 while running jobs and
// accepted cells finish (bounded by -drain-timeout), then the listener
// shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pacram/internal/service"
)

// fleetFlags groups the worker-mode knobs so run's signature stays
// readable.
type fleetFlags struct {
	coordinator string
	advertise   string
	workerName  string
	heartbeat   time.Duration
}

func main() {
	var (
		addr         = flag.String("addr", ":8793", "listen address")
		parallel     = flag.Int("parallel", 0, "shared worker pool size across all jobs (0 = all CPUs)")
		cacheDir     = flag.String("cache", "", "result store directory (default: a private temp dir)")
		storeURL     = flag.String("store", "", "remote result-store origin URL (another pacramd) behind the disk tier")
		memStoreMB   = flag.Int64("mem-store", 256, "in-memory result-store tier size in MB (0 disables the tier)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long to wait for running jobs on shutdown")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceDir     = flag.String("trace", "", "record one span-tree trace file per job in this directory (see cmd/tracetool)")
		coordinator  = flag.String("coordinator", "", "join the sweep fabric as a worker of the coordinator daemon at this URL")
		advertise    = flag.String("advertise", "", "URL the coordinator reaches this worker at (default: http://localhost<addr>)")
		workerName   = flag.String("worker-name", "", "stable fleet identity (default: <hostname>-<pid>)")
		heartbeat    = flag.Duration("heartbeat", 0, "worker heartbeat interval (0: a third of the coordinator's TTL)")
	)
	flag.Parse()
	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pacramd: %v\n", err)
		os.Exit(2)
	}
	ff := fleetFlags{coordinator: *coordinator, advertise: *advertise, workerName: *workerName, heartbeat: *heartbeat}
	if err := run(*addr, *parallel, *cacheDir, *storeURL, *traceDir, *memStoreMB, *drainTimeout, level, ff); err != nil {
		fmt.Fprintf(os.Stderr, "pacramd: %v\n", err)
		os.Exit(1)
	}
}

// parseLevel maps the -log-level flag to a slog level; unknown names
// fail loudly rather than silently defaulting.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (have: debug info warn error)", s)
}

// advertiseDefault derives the URL a coordinator can reach this
// daemon at from its listen address: an address with no host listens
// on every interface, so localhost works for single-machine fleets and
// multi-machine setups must pass -advertise explicitly.
func advertiseDefault(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

func run(addr string, parallel int, cacheDir, storeURL, traceDir string, memStoreMB int64, drainTimeout time.Duration, level slog.Level, ff fleetFlags) error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	memBytes := memStoreMB << 20
	if memStoreMB <= 0 {
		memBytes = -1 // Config: negative disables the mem tier
	}
	if ff.coordinator != "" && storeURL == "" {
		// A worker mounts its coordinator as its remote store tier:
		// computed cells write back fleet-visible, and cells finished
		// anywhere in the fleet are fetched instead of recomputed.
		storeURL = ff.coordinator
	}
	srv, err := service.New(service.Config{
		Workers:       parallel,
		CacheDir:      cacheDir,
		StoreURL:      storeURL,
		MemStoreBytes: memBytes,
		Logger:        logger,
		TraceDir:      traceDir,
		WorkerName:    ff.workerName,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", addr, "workers", srv.Workers(), "store", srv.StoreDir())
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	var membership *service.Membership
	if ff.coordinator != "" {
		adv := ff.advertise
		if adv == "" {
			adv = advertiseDefault(addr)
		}
		membership = srv.JoinFleet(ff.coordinator, adv, ff.heartbeat)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if membership != nil {
			membership.Leave()
		}
		return err
	case s := <-sig:
		logger.Info("received signal, draining", "signal", s.String())
	}

	// Leave the fleet before draining: the coordinator stops dispatching
	// here (its remaining cells remap or compute locally) while this
	// daemon finishes the cells it already accepted.
	if membership != nil {
		membership.Leave()
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if drainErr != nil {
		logger.Error("drain failed", "err", drainErr)
	}
	// The drain may have consumed its whole budget; in-flight HTTP
	// responses (a table fetch, an SSE subscriber) still get their own
	// grace window to complete.
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && drainErr == nil {
		return fmt.Errorf("shutdown: %w", err)
	} else if err != nil {
		logger.Warn("shutdown", "err", err)
	}
	if err := <-errCh; err != nil && drainErr == nil {
		return err
	}
	if drainErr == nil {
		// Drained clean: a private temp store has no further use. An
		// abandoned drain skips this — its jobs still write there.
		if err := srv.Close(); err != nil {
			logger.Warn("removing result store", "err", err)
		}
	}
	// A timed-out drain abandoned running jobs; exit nonzero with that
	// as the cause — it subsumes any secondary shutdown timeout (an
	// SSE subscriber to an abandoned job keeps its handler open).
	return drainErr
}
