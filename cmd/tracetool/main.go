// Command tracetool summarizes the span-tree traces pacramd
// (-trace DIR) and scenario run (-trace FILE) record: one JSONL line
// per span, one root span per simulation cell with its phases
// (store-get, pool-wait, compute, store-put, coalesce-wait — or, for
// fabric-dispatched cells, dispatch-wait and remote-compute) as
// children. Cells executed by fleet workers carry a "worker" attribute
// on the root span; when any are present the report opens with a
// fleet split attributing cells to machines, and the critical-path
// lines name the executing worker. Computed cells also carry the simulator's own wall-time
// split as sub-phases — sim-cores, sim-ctrl, and on multi-channel
// shapes sim-windows and sim-window-merge (see sim.Profile) — so the
// breakdown separates core ticking from controller work from
// channel-window advancement.
//
// Usage:
//
//	tracetool [-top N] [-buckets N] FILE
//
// FILE is a .trace.jsonl file ("-" reads stdin). The report has three
// sections:
//
//   - per-phase wall-clock breakdown: count, total, mean and max per
//     phase name across all cells;
//   - pool-utilization timeline: average concurrent compute spans per
//     time bucket across the trace's extent — gaps mean the pool sat
//     idle, a plateau at the worker count means it was saturated;
//   - critical path: the -top slowest cells, each root broken into its
//     phases with the untracked remainder, so the dominant phase of
//     the slowest work is visible at a glance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"pacram/internal/telemetry"
)

func main() {
	var (
		top     = flag.Int("top", 3, "slowest cells to expand in the critical-path section")
		buckets = flag.Int("buckets", 20, "time buckets in the pool-utilization timeline")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracetool [-top N] [-buckets N] FILE\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *top, *buckets); err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, path string, top, buckets int) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	spans, err := telemetry.ReadSpans(r)
	if err != nil {
		return err
	}
	return summarize(w, spans, top, buckets)
}

// cell is one reassembled span tree: a root and its phase children.
type cell struct {
	root   telemetry.Span
	phases []telemetry.Span
}

// summarize renders the full report. Output is deterministic for a
// given trace: ties are broken by span ID, phases by name.
func summarize(w io.Writer, spans []telemetry.Span, top, buckets int) error {
	if len(spans) == 0 {
		return fmt.Errorf("trace is empty")
	}
	byID := map[string]*cell{}
	var cells []*cell
	for _, s := range spans {
		if s.Parent == "" {
			c := &cell{root: s}
			byID[s.ID] = c
			cells = append(cells, c)
		}
	}
	for _, s := range spans {
		if s.Parent == "" {
			continue
		}
		c, ok := byID[s.Parent]
		if !ok {
			return fmt.Errorf("span %s references unknown parent %s", s.ID, s.Parent)
		}
		c.phases = append(c.phases, s)
	}
	if len(cells) == 0 {
		return fmt.Errorf("trace has no root spans")
	}

	trace := cells[0].root.Trace
	outcomes := map[string]int{}
	start, end := cells[0].root.Start, cells[0].root.End
	for _, c := range cells {
		outcomes[c.root.Attrs["outcome"]]++
		if c.root.Start < start {
			start = c.root.Start
		}
		if c.root.End > end {
			end = c.root.End
		}
	}
	var split []string
	for _, o := range []string{"computed", "cached", "coalesced", "remote", "failed"} {
		if n := outcomes[o]; n > 0 {
			split = append(split, fmt.Sprintf("%d %s", n, o))
		}
	}
	fmt.Fprintf(w, "trace %s: %d cells (%s), wall %s\n",
		trace, len(cells), strings.Join(split, ", "), fmtDur(end-start))
	fleetSplit(w, cells)

	phaseBreakdown(w, cells)
	timeline(w, cells, start, end, buckets)
	criticalPath(w, cells, top)
	return nil
}

// fleetSplit attributes cells to the machines that executed them when
// the trace has any fabric-dispatched cells (root spans carry a
// "worker" attribute). Purely local traces print nothing, keeping
// pre-fabric output byte-identical.
func fleetSplit(w io.Writer, cells []*cell) {
	counts := map[string]int{}
	local := 0
	for _, c := range cells {
		if name := c.root.Attrs["worker"]; name != "" {
			counts[name]++
		} else {
			local++
		}
	}
	if len(counts) == 0 {
		return
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names)+1)
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s: %d", n, counts[n]))
	}
	if local > 0 {
		parts = append(parts, fmt.Sprintf("local: %d", local))
	}
	fmt.Fprintf(w, "fleet: %s\n", strings.Join(parts, ", "))
}

// phaseBreakdown aggregates every phase span by name.
func phaseBreakdown(w io.Writer, cells []*cell) {
	type agg struct {
		count      int
		total, max int64
	}
	phases := map[string]*agg{}
	for _, c := range cells {
		for _, p := range c.phases {
			a := phases[p.Name]
			if a == nil {
				a = &agg{}
				phases[p.Name] = a
			}
			d := p.End - p.Start
			a.count++
			a.total += d
			if d > a.max {
				a.max = d
			}
		}
	}
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	// Heaviest phase first; name breaks ties for determinism.
	sort.Slice(names, func(i, j int) bool {
		a, b := phases[names[i]], phases[names[j]]
		if a.total != b.total {
			return a.total > b.total
		}
		return names[i] < names[j]
	})

	fmt.Fprintf(w, "\nphase breakdown:\n")
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "  phase\tcount\ttotal\tmean\tmax\t\n")
	for _, n := range names {
		a := phases[n]
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%s\t\n",
			n, a.count, fmtDur(a.total), fmtDur(a.total/int64(a.count)), fmtDur(a.max))
	}
	tw.Flush()
}

// timeline renders average concurrent compute spans per bucket: the
// pool-utilization view. Wait and store phases are excluded — the
// question the timeline answers is "were the workers busy".
func timeline(w io.Writer, cells []*cell, start, end int64, buckets int) {
	if buckets <= 0 {
		buckets = 20
	}
	extent := end - start
	if extent <= 0 {
		return
	}
	width := (extent + int64(buckets) - 1) / int64(buckets)
	busy := make([]int64, buckets) // summed compute-span overlap per bucket
	for _, c := range cells {
		for _, p := range c.phases {
			if p.Name != "compute" {
				continue
			}
			for b := 0; b < buckets; b++ {
				lo, hi := start+int64(b)*width, start+int64(b+1)*width
				o := min64(p.End, hi) - max64(p.Start, lo)
				if o > 0 {
					busy[b] += o
				}
			}
		}
	}
	fmt.Fprintf(w, "\npool utilization (avg concurrent compute spans, %d buckets of %s):\n",
		buckets, fmtDur(width))
	for b := 0; b < buckets; b++ {
		avg := float64(busy[b]) / float64(width)
		bar := strings.Repeat("█", int(avg+0.5))
		fmt.Fprintf(w, "  %10s  %-8s %.2f\n", fmtDur(int64(b)*width), bar, avg)
	}
}

// criticalPath expands the slowest cells into their phases plus the
// untracked remainder.
func criticalPath(w io.Writer, cells []*cell, top int) {
	if top <= 0 {
		top = 3
	}
	sorted := append([]*cell(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := sorted[i].root.End-sorted[i].root.Start, sorted[j].root.End-sorted[j].root.Start
		if di != dj {
			return di > dj
		}
		return sorted[i].root.ID < sorted[j].root.ID
	})
	if top > len(sorted) {
		top = len(sorted)
	}
	fmt.Fprintf(w, "\ncritical path (slowest %d of %d cells):\n", top, len(sorted))
	for _, c := range sorted[:top] {
		total := c.root.End - c.root.Start
		outcome := c.root.Attrs["outcome"]
		if worker := c.root.Attrs["worker"]; worker != "" {
			outcome += " @ " + worker
		}
		fmt.Fprintf(w, "  %s (%s) %s\n", c.root.Cell, outcome, fmtDur(total))
		phases := append([]telemetry.Span(nil), c.phases...)
		sort.Slice(phases, func(i, j int) bool {
			if phases[i].Start != phases[j].Start {
				return phases[i].Start < phases[j].Start
			}
			return phases[i].ID < phases[j].ID
		})
		var tracked int64
		for _, p := range phases {
			d := p.End - p.Start
			tracked += d
			fmt.Fprintf(w, "    %-13s %10s  %5.1f%%\n", p.Name, fmtDur(d), pct(d, total))
		}
		if rest := total - tracked; rest > 0 {
			fmt.Fprintf(w, "    %-13s %10s  %5.1f%%\n", "(untracked)", fmtDur(rest), pct(rest, total))
		}
	}
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// fmtDur renders nanoseconds rounded to the microsecond — traces
// measure wall clock, so sub-microsecond noise is not information.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
