package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pacram/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden summary from the current output")

// TestSummaryGolden pins the full report byte for byte against a
// committed fixture trace: the fixture has two computed cells (one
// dominating the critical path), a cached cell and a coalesced cell,
// so every section exercises every outcome.
func TestSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join("testdata", "sample.trace.jsonl"), 2, 10); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sample.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("summary differs from golden (re-run with -update to accept):\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestSummaryOnRealTrace feeds the summarizer a trace the runner
// actually recorded (via the telemetry writer round trip) rather than
// a hand-written fixture — the shape contract between producer and
// consumer, without depending on wall-clock values.
func TestSummaryOnRealTrace(t *testing.T) {
	spans := []telemetry.Span{
		{Trace: "t", ID: "c0", Name: "cell", Cell: "k0", Start: 100, End: 900, Attrs: map[string]string{"outcome": "computed"}},
		{Trace: "t", ID: "c0.0", Parent: "c0", Name: "compute", Cell: "k0", Start: 150, End: 850},
	}
	var file bytes.Buffer
	tw := telemetry.NewTraceWriter(&file)
	tw.WriteAll(spans)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadSpans(&file)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := summarize(&out, back, 1, 4); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace t: 1 cells (1 computed)", "compute", "critical path"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
}

func TestSummaryErrors(t *testing.T) {
	var out bytes.Buffer
	if err := summarize(&out, nil, 3, 20); err == nil {
		t.Error("empty trace accepted")
	}
	orphan := []telemetry.Span{{Trace: "t", ID: "x.0", Parent: "x", Name: "compute", Start: 0, End: 1}}
	if err := summarize(&out, orphan, 3, 20); err == nil || !strings.Contains(err.Error(), "unknown parent") {
		t.Errorf("orphan span: got %v", err)
	}
}
