// Command characterize runs the DRAM-chip characterization experiments
// of the paper (Figs. 4 and 6-14, Tables 1 and 3) against the modeled
// module fleet and prints the resulting tables, optionally also as CSV.
//
// Examples:
//
//	characterize -exp fig6                 # NRH vs tRAS box data, all modules
//	characterize -exp table3 -rows 96      # tighter statistics
//	characterize -exp all -csv out/        # everything, with CSV dumps
//	characterize -exp fig12 -modules H7,M2,S6
//	characterize -exp all -parallel 8 -cache .pacram-cache
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pacram/internal/exp"
)

var experiments = []string{
	"table1", "fig4", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "table3", "profiling",
}

func main() {
	var (
		expFlag  = flag.String("exp", "fig6", "experiment id, comma-separated list, or 'all': "+strings.Join(experiments, " "))
		rows     = flag.Int("rows", 24, "rows sampled per module (paper: 3000)")
		bank     = flag.Int("bankrows", 128, "modeled rows per bank (power of two)")
		modules  = flag.String("modules", "", "comma-separated module IDs (default: experiment-specific)")
		iters    = flag.Int("iterations", 1, "measurement iterations (paper: 5)")
		seed     = flag.Uint64("seed", 0x9ac24a, "experiment seed")
		csvDir   = flag.String("csv", "", "directory to write per-experiment CSV files")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = all CPUs); results are identical at any value")
		cacheDir = flag.String("cache", "", "cache completed sweep points as JSON in this directory; re-runs skip them")
		quiet    = flag.Bool("quiet", false, "suppress progress/ETA output on stderr")
	)
	flag.Parse()

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	opt := exp.DefaultCharOptions()
	opt.Rows = *rows
	opt.BankRows = *bank
	opt.Iterations = *iters
	opt.Seed = *seed
	opt.Parallel = *parallel
	opt.CacheDir = *cacheDir
	opt.Progress = progress
	if *modules != "" {
		opt.Modules = strings.Split(*modules, ",")
	}

	ids := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		ids = experiments
	}
	for _, id := range ids {
		tbl, err := runExperiment(strings.TrimSpace(id), opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "characterize: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "characterize: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func runExperiment(id string, opt exp.CharOptions) (*exp.Table, error) {
	switch id {
	case "table1":
		return exp.Table1(opt)
	case "fig4":
		return exp.Fig4(opt)
	case "fig6":
		return exp.Fig6(opt)
	case "fig7":
		return exp.Fig7(opt)
	case "fig8":
		return exp.Fig8(opt)
	case "fig9":
		return exp.Fig9(opt)
	case "fig10":
		return exp.Fig10(opt)
	case "fig11":
		return exp.Fig11(opt)
	case "fig12":
		return exp.Fig12(opt)
	case "fig13":
		return exp.Fig13(opt)
	case "fig14":
		return exp.Fig14(opt)
	case "table3":
		return exp.Table3(opt)
	case "profiling":
		return exp.Profiling(), nil
	}
	return nil, fmt.Errorf("unknown experiment %q (have: %s)", id, strings.Join(experiments, " "))
}

func writeCSV(dir string, tbl *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
