package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pacram/internal/trace"
)

// TestConvertRoundTrip drives the tool the way the CI smoke job does:
// text -> binary -> text must reproduce the records exactly, and the
// binary intermediate must be auto-detected on the way back.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "a.trace")
	bin := filepath.Join(dir, "a.bin")
	back := filepath.Join(dir, "b.trace")

	src := "# comment\n3 0x1000 R\n0 0x2040 W\n7 0x1000 R\n"
	if err := os.WriteFile(text, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-to", "binary", text, bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-to", "text", bin, back}); err != nil {
		t.Fatal(err)
	}

	want, err := trace.ReadFile(text)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("records changed across text->binary->text:\ngot  %+v\nwant %+v", got, want)
	}

	raw, err := os.ReadFile(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || string(raw[:4]) != "PACT" {
		t.Errorf("binary output missing magic: % x", raw[:min(len(raw), 8)])
	}
}

func TestBadArgs(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no args: got %v", err)
	}
	if err := run([]string{"-to", "json", "x"}); err == nil || !strings.Contains(err.Error(), "text or binary") {
		t.Errorf("bad format: got %v", err)
	}
	if err := run([]string{"does-not-exist.trace"}); err == nil {
		t.Error("missing input accepted")
	}
}
