// Command tracefmt converts memory access traces between the
// human-readable text format and the canonical binary format
// (internal/trace). The input format is auto-detected from the
// leading magic bytes, so converting in either direction — or
// re-canonicalizing a trace in place — is the same invocation:
//
//	tracefmt -to binary app.trace app.bin
//	tracefmt -to text app.bin            # to stdout
//	tracefmt app.bin | less              # -to text is the default
//
// Both formats carry the identical record stream, and the scenario
// engine content-addresses replay cores by the records' canonical
// binary digest, so a converted trace drives byte-identical
// simulation results — the CI smoke job verifies exactly that.
package main

import (
	"bufio"
	"fmt"
	"os"

	"pacram/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "tracefmt: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	to := "text"
	if len(args) >= 2 && args[0] == "-to" {
		to = args[1]
		args = args[2:]
	}
	if to != "text" && to != "binary" {
		return fmt.Errorf("-to must be text or binary, got %q", to)
	}
	if len(args) < 1 || len(args) > 2 {
		return fmt.Errorf("usage: tracefmt [-to text|binary] <in> [out]")
	}

	recs, err := trace.ReadFile(args[0])
	if err != nil {
		return err
	}

	out := os.Stdout
	if len(args) == 2 {
		f, err := os.Create(args[1])
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	bw := bufio.NewWriter(out)
	if to == "binary" {
		err = trace.EncodeBinary(bw, recs)
	} else {
		err = trace.WriteRecords(bw, recs)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}
