// Command pacramcfg derives PaCRAM operating points from the module
// characterization data: NRH scaling factor, NPCR, the full-charge-
// restoration interval (tFCRI), and the metadata cost — the workflow
// of the paper's §8.3 and Appendix C Table 4.
//
// Examples:
//
//	pacramcfg -module S6 -nrh 3900       # all factors for one module
//	pacramcfg -module H5 -best -nrh 64   # best operating point
//	pacramcfg -all -nrh 1024             # full Table 4
//	pacramcfg -area                      # §8.4 hardware cost report
package main

import (
	"flag"
	"fmt"
	"os"

	"pacram/internal/chips"
	pacram "pacram/internal/core"
	"pacram/internal/ddr"
	"pacram/internal/exp"
)

func main() {
	var (
		module = flag.String("module", "", "module ID (e.g. H5, M2, S6)")
		nrh    = flag.Int("nrh", 1024, "RowHammer threshold of the wrapped mitigation mechanism")
		best   = flag.Bool("best", false, "print only the best operating point for the module")
		all    = flag.Bool("all", false, "print the full per-module configuration table (Table 4)")
		area   = flag.Bool("area", false, "print the hardware cost report (§8.4)")
		ddr5   = flag.Bool("ddr5", false, "derive against DDR5 timings (default DDR4, as characterized)")
	)
	flag.Parse()

	timing := ddr.DDR4()
	if *ddr5 {
		timing = ddr.DDR5()
	}

	switch {
	case *area:
		if err := exp.AreaReport().Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	case *all:
		tbl, err := exp.Table4(*nrh)
		if err != nil {
			fatal(err)
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
	case *module != "":
		m, err := chips.ByID(*module)
		if err != nil {
			fatal(err)
		}
		if *best {
			cfg, err := pacram.BestFactor(m, *nrh, timing)
			if err != nil {
				fatal(err)
			}
			fmt.Println(cfg)
			return
		}
		for idx := 1; idx < len(chips.Factors); idx++ {
			cfg, err := pacram.Derive(m, idx, *nrh, timing)
			if err != nil {
				fmt.Printf("factor %.2f: not applicable (%v)\n", chips.Factors[idx], err)
				continue
			}
			fmt.Println(cfg)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pacramcfg: %v\n", err)
	os.Exit(1)
}
