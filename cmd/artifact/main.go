// Command artifact checks the paper's four artifact-evaluation claims
// (Appendix A.5) against the reproduction, printing PASS/FAIL per
// claim:
//
//	C1.1  Reducing tRAS lowers NRH / raises BER, and beyond a safe
//	      minimum causes data-retention failures (Figs. 6, 9).
//	C1.2  Repeated partial charge restoration can cause retention
//	      failures, so it must be bounded (Fig. 11/12).
//	C2.1  PaCRAM improves system performance for single-core and
//	      multi-programmed workloads (Figs. 16, 17).
//	C2.2  PaCRAM improves system energy efficiency (Fig. 18).
//
// All measurement cells run through the internal/runner worker pool:
// -parallel N bounds the pool (results are bit-identical at any N),
// and -cache DIR (on by default) persists finished cells so repeated
// runs skip straight to the verdicts.
//
// Run with: go run ./cmd/artifact [-rows N] [-insts N] [-parallel N] [-cache DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pacram/internal/bender"
	"pacram/internal/characterize"
	"pacram/internal/chips"
	pacram "pacram/internal/core"
	"pacram/internal/mitigation"
	"pacram/internal/runner"
	"pacram/internal/sim"
	"pacram/internal/trace"
)

// rowProbe bundles every per-row measurement the C1 claims need, so
// one job per victim row covers both claims.
type rowProbe struct {
	Nom, Red, Deep characterize.RowMeasurement
	FailedOnce     bool
	FailedMany     bool
}

func main() {
	var (
		rows     = flag.Int("rows", 16, "rows per module for the characterization claims")
		insts    = flag.Uint64("insts", 40_000, "instructions per core for the system claims")
		seed     = flag.Uint64("seed", 0x9ac24a, "seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = all CPUs); results are identical at any value")
		cacheDir = flag.String("cache", ".pacram-cache", "cell cache directory ('' disables caching)")
		quiet    = flag.Bool("quiet", false, "suppress progress/ETA output on stderr")
	)
	flag.Parse()

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	ropt, err := runner.Options{
		Workers:     *parallel,
		Seed:        *seed,
		Fingerprint: fmt.Sprintf("artifact:v1:rows=%d:insts=%d:seed=%d", *rows, *insts, *seed),
		Progress:    progress,
	}.WithStore(*cacheDir, "")
	must(err)

	probes, sims := runClaims(ropt, *rows, *insts, *seed)

	failures := 0
	check := func(id, desc string, pass bool, detail string) {
		status := "PASS"
		if !pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-4s %s\n       %s\n", status, id, desc, detail)
	}

	// ---- C1.1 -----------------------------------------------------
	{
		var nrhNom, nrh045, retZero int
		var berNom, ber045 float64
		for _, p := range probes {
			nrhNom += p.Nom.NRH
			nrh045 += p.Red.NRH
			berNom += p.Nom.BER
			ber045 += p.Red.BER
			if p.Deep.NRH == 0 {
				retZero++
			}
		}
		n := len(probes)
		pass := nrh045 < nrhNom && ber045 > berNom && retZero == n
		check("C1.1", "reduced tRAS lowers NRH, raises BER; beyond safe minimum retention fails", pass,
			fmt.Sprintf("S6: mean NRH %d -> %d at 0.45 tRAS; mean BER %.4f -> %.4f; %d/%d rows fail without hammering at 0.18 tRAS",
				nrhNom/n, nrh045/n, berNom/float64(n), ber045/float64(n), retZero, n))
	}

	// ---- C1.2 -----------------------------------------------------
	{
		failedOnce, failedMany := 0, 0
		for _, p := range probes {
			if p.FailedOnce {
				failedOnce++
			}
			if p.FailedMany {
				failedMany++
			}
		}
		pass := failedOnce == 0 && failedMany > 0
		check("C1.2", "repeated partial restoration causes failures; a single one does not", pass,
			fmt.Sprintf("S6 at 0.36 tRAS within 64ms: %d/%d rows fail after 1 restore, %d/%d after 5000",
				failedOnce, len(probes), failedMany, len(probes)))
	}

	// ---- C2.1 / C2.2 ----------------------------------------------
	{
		s0, s1 := sims["c2/single/nopac"], sims["c2/single/pacram"]
		m0, m1 := sims["c2/mix/nopac"], sims["c2/mix/pacram"]

		perfPass := s1.IPC[0] > s0.IPC[0] && m1.SumIPC() > m0.SumIPC()
		check("C2.1", "PaCRAM improves single-core and multi-core performance", perfPass,
			fmt.Sprintf("RFM@64 + PaCRAM-H: single IPC %.4f -> %.4f (%+.2f%%); mix throughput %.4f -> %.4f (%+.2f%%)",
				s0.IPC[0], s1.IPC[0], 100*(s1.IPC[0]/s0.IPC[0]-1),
				m0.SumIPC(), m1.SumIPC(), 100*(m1.SumIPC()/m0.SumIPC()-1)))

		energyPass := s1.Energy.PrevRefresh < s0.Energy.PrevRefresh &&
			s1.Energy.Total() < s0.Energy.Total()
		check("C2.2", "PaCRAM improves energy efficiency", energyPass,
			fmt.Sprintf("preventive-refresh energy %.3g -> %.3g J; total %.3g -> %.3g J",
				s0.Energy.PrevRefresh, s1.Energy.PrevRefresh,
				s0.Energy.Total(), s1.Energy.Total()))
	}

	if failures > 0 {
		fmt.Printf("\n%d claim(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall claims PASS")
}

// runClaims fans every measurement cell of the four claims out over
// the worker pool: one job per victim row for the C1 claims, one job
// per simulation for the C2 claims.
func runClaims(ropt runner.Options, rows int, insts, seed uint64) ([]rowProbe, map[string]sim.Result) {
	mod, err := chips.ByID("S6")
	must(err)
	opt := chips.DefaultDeviceOptions()
	opt.Seed = seed

	// Row selection needs a platform; jobs then rebuild their own so
	// they share no state (the device model is closed-form per row, so
	// an isolated platform measures exactly what a shared one would).
	sel, err := bender.New(mod.NewChip(opt), seed)
	must(err)
	testRows := characterize.SelectRows(sel, rows)
	cfg := characterize.DefaultConfig()

	c1 := runner.NewMatrix[rowProbe]()
	for _, victim := range testRows {
		c1.Add(fmt.Sprintf("c1/row%d", victim), func(runner.Ctx) (rowProbe, error) {
			pl, err := bender.New(mod.NewChip(opt), seed)
			if err != nil {
				return rowProbe{}, err
			}
			pl.SetTemperature(80)
			var p rowProbe
			if p.Nom, err = characterize.MeasureRow(pl, victim, 33.0, 1, cfg); err != nil {
				return p, err
			}
			if p.Red, err = characterize.MeasureRow(pl, victim, 0.45*33.0, 1, cfg); err != nil {
				return p, err
			}
			if p.Deep, err = characterize.MeasureRow(pl, victim, 0.18*33.0, 1, cfg); err != nil {
				return p, err
			}
			if p.FailedOnce, err = characterize.MeasureRetentionRow(pl, victim, 0.36*33.0, 1, 64); err != nil {
				return p, err
			}
			if p.FailedMany, err = characterize.MeasureRetentionRow(pl, victim, 0.36*33.0, 5000, 64); err != nil {
				return p, err
			}
			return p, nil
		})
	}
	c1opt := ropt
	c1opt.Label = "artifact/C1"
	probeByKey, err := runner.Run(c1opt, c1.Jobs())
	must(err)
	probes := make([]rowProbe, 0, len(testRows))
	for _, victim := range testRows {
		probes = append(probes, probeByKey[fmt.Sprintf("c1/row%d", victim)])
	}

	// System claims: RFM at NRH=64 with and without PaCRAM-H.
	modH, err := chips.ByID("H5")
	must(err)
	pcfg, err := pacram.Derive(modH, 4 /* 0.36 tRAS */, 64, sim.SmallMemConfig().Timing)
	must(err)
	spec, err := trace.SpecByName("429.mcf")
	must(err)
	mix := trace.Mixes()[0]

	c2 := runner.NewMatrix[sim.Result]()
	addSim := func(key string, workloads []trace.Spec, pc *pacram.Config) {
		w := append([]trace.Spec(nil), workloads...)
		c2.Add(key, func(runner.Ctx) (sim.Result, error) {
			o := sim.DefaultOptions(w...)
			o.MemCfg = sim.SmallMemConfig()
			o.Instructions = insts
			o.Warmup = insts / 10
			o.Mitigation = mitigation.NameRFM
			o.NRH = 64
			o.PaCRAM = pc
			o.Seed = seed
			return sim.Run(o)
		})
	}
	addSim("c2/single/nopac", []trace.Spec{spec}, nil)
	addSim("c2/single/pacram", []trace.Spec{spec}, &pcfg)
	addSim("c2/mix/nopac", mix.Specs[:], nil)
	addSim("c2/mix/pacram", mix.Specs[:], &pcfg)
	c2opt := ropt
	c2opt.Label = "artifact/C2"
	sims, err := runner.Run(c2opt, c2.Jobs())
	must(err)
	return probes, sims
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "artifact:", err)
		os.Exit(1)
	}
}
