// Command artifact checks the paper's four artifact-evaluation claims
// (Appendix A.5) against the reproduction, printing PASS/FAIL per
// claim:
//
//	C1.1  Reducing tRAS lowers NRH / raises BER, and beyond a safe
//	      minimum causes data-retention failures (Figs. 6, 9).
//	C1.2  Repeated partial charge restoration can cause retention
//	      failures, so it must be bounded (Fig. 11/12).
//	C2.1  PaCRAM improves system performance for single-core and
//	      multi-programmed workloads (Figs. 16, 17).
//	C2.2  PaCRAM improves system energy efficiency (Fig. 18).
//
// Run with: go run ./cmd/artifact [-rows N] [-insts N]
package main

import (
	"flag"
	"fmt"
	"os"

	"pacram/internal/bender"
	"pacram/internal/characterize"
	"pacram/internal/chips"
	pacram "pacram/internal/core"
	"pacram/internal/mitigation"
	"pacram/internal/sim"
	"pacram/internal/trace"
)

func main() {
	var (
		rows  = flag.Int("rows", 16, "rows per module for the characterization claims")
		insts = flag.Uint64("insts", 40_000, "instructions per core for the system claims")
		seed  = flag.Uint64("seed", 0x9ac24a, "seed")
	)
	flag.Parse()

	failures := 0
	check := func(id, desc string, pass bool, detail string) {
		status := "PASS"
		if !pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %-4s %s\n       %s\n", status, id, desc, detail)
	}

	// ---- C1.1 -----------------------------------------------------
	{
		mod, err := chips.ByID("S6")
		must(err)
		opt := chips.DefaultDeviceOptions()
		opt.Seed = *seed
		pl, err := bender.New(mod.NewChip(opt), *seed)
		must(err)
		pl.SetTemperature(80)
		cfg := characterize.DefaultConfig()
		testRows := characterize.SelectRows(pl, *rows)

		var nrhNom, nrh045, retZero int
		var berNom, ber045 float64
		for _, v := range testRows {
			nom, err := characterize.MeasureRow(pl, v, 33.0, 1, cfg)
			must(err)
			red, err := characterize.MeasureRow(pl, v, 0.45*33.0, 1, cfg)
			must(err)
			deep, err := characterize.MeasureRow(pl, v, 0.18*33.0, 1, cfg)
			must(err)
			nrhNom += nom.NRH
			nrh045 += red.NRH
			berNom += nom.BER
			ber045 += red.BER
			if deep.NRH == 0 {
				retZero++
			}
		}
		pass := nrh045 < nrhNom && ber045 > berNom && retZero == len(testRows)
		check("C1.1", "reduced tRAS lowers NRH, raises BER; beyond safe minimum retention fails", pass,
			fmt.Sprintf("S6: mean NRH %d -> %d at 0.45 tRAS; mean BER %.4f -> %.4f; %d/%d rows fail without hammering at 0.18 tRAS",
				nrhNom/len(testRows), nrh045/len(testRows),
				berNom/float64(len(testRows)), ber045/float64(len(testRows)),
				retZero, len(testRows)))
	}

	// ---- C1.2 -----------------------------------------------------
	{
		mod, err := chips.ByID("S6")
		must(err)
		opt := chips.DefaultDeviceOptions()
		opt.Seed = *seed
		pl, err := bender.New(mod.NewChip(opt), *seed)
		must(err)
		pl.SetTemperature(80)
		testRows := characterize.SelectRows(pl, *rows)
		failedOnce, failedMany := 0, 0
		for _, r := range testRows {
			f1, err := characterize.MeasureRetentionRow(pl, r, 0.36*33.0, 1, 64)
			must(err)
			fMany, err := characterize.MeasureRetentionRow(pl, r, 0.36*33.0, 5000, 64)
			must(err)
			if f1 {
				failedOnce++
			}
			if fMany {
				failedMany++
			}
		}
		pass := failedOnce == 0 && failedMany > 0
		check("C1.2", "repeated partial restoration causes failures; a single one does not", pass,
			fmt.Sprintf("S6 at 0.36 tRAS within 64ms: %d/%d rows fail after 1 restore, %d/%d after 5000",
				failedOnce, len(testRows), failedMany, len(testRows)))
	}

	// ---- C2.1 / C2.2 ----------------------------------------------
	{
		mod, err := chips.ByID("H5")
		must(err)
		cfg, err := pacram.Derive(mod, 4 /* 0.36 tRAS */, 64, sim.SmallMemConfig().Timing)
		must(err)

		spec, err := trace.SpecByName("429.mcf")
		must(err)
		mix := trace.Mixes()[0]

		run := func(workloads []trace.Spec, pc *pacram.Config) sim.Result {
			o := sim.DefaultOptions(workloads...)
			o.MemCfg = sim.SmallMemConfig()
			o.Instructions = *insts
			o.Warmup = *insts / 10
			o.Mitigation = mitigation.NameRFM
			o.NRH = 64
			o.PaCRAM = pc
			o.Seed = *seed
			res, err := sim.Run(o)
			must(err)
			return res
		}

		s0 := run([]trace.Spec{spec}, nil)
		s1 := run([]trace.Spec{spec}, &cfg)
		m0 := run(mix.Specs[:], nil)
		m1 := run(mix.Specs[:], &cfg)

		perfPass := s1.IPC[0] > s0.IPC[0] && m1.SumIPC() > m0.SumIPC()
		check("C2.1", "PaCRAM improves single-core and multi-core performance", perfPass,
			fmt.Sprintf("RFM@64 + PaCRAM-H: single IPC %.4f -> %.4f (%+.2f%%); mix throughput %.4f -> %.4f (%+.2f%%)",
				s0.IPC[0], s1.IPC[0], 100*(s1.IPC[0]/s0.IPC[0]-1),
				m0.SumIPC(), m1.SumIPC(), 100*(m1.SumIPC()/m0.SumIPC()-1)))

		energyPass := s1.Energy.PrevRefresh < s0.Energy.PrevRefresh &&
			s1.Energy.Total() < s0.Energy.Total()
		check("C2.2", "PaCRAM improves energy efficiency", energyPass,
			fmt.Sprintf("preventive-refresh energy %.3g -> %.3g J; total %.3g -> %.3g J",
				s0.Energy.PrevRefresh, s1.Energy.PrevRefresh,
				s0.Energy.Total(), s1.Energy.Total()))
	}

	if failures > 0 {
		fmt.Printf("\n%d claim(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall claims PASS")
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "artifact:", err)
		os.Exit(1)
	}
}
