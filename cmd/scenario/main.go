// Command scenario runs declarative experiment specs: JSON files (or
// built-in catalog entries) describing memory geometry, mitigation and
// PaCRAM configuration, per-core workloads and sweep axes, compiled
// onto the parallel sweep engine. It is the front door to experiments
// the paper's figure drivers never hard-coded.
//
// Usage:
//
//	scenario list                     # built-in catalog
//	scenario metrics                  # per-member metric reference
//	scenario validate [file...]       # no args: validate the catalog
//	scenario run [flags] <name|file>...
//
// Examples:
//
//	scenario run hammer-victim
//	scenario run fig17 -parallel 8 -cache .pacram-cache -csv out/
//	scenario validate my-experiment.json
//	scenario run my-experiment.json -quiet
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"pacram/internal/exp"
	"pacram/internal/scenario"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "metrics":
		err = metrics()
	case "validate":
		err = validate(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  scenario list                     list the built-in catalog
  scenario metrics                  list the per-member metrics columns can use
  scenario validate [file...]       validate spec files (no args: the catalog)
  scenario run [flags] <name|file>  run built-in scenarios or spec files

run flags:
  -parallel N      worker pool size (0 = all CPUs); results identical at any value
  -cache DIR       persist per-cell results; re-runs skip finished cells
  -csv DIR         also write per-scenario CSV files
  -quiet           suppress progress/ETA output on stderr
  -cpuprofile FILE write a CPU profile (go tool pprof)
`)
}

func list() error {
	specs, err := scenario.Catalog()
	if err != nil {
		return err
	}
	for _, s := range specs {
		p, err := s.Compile()
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %3d cells, %2d rows  %s\n", s.Name, p.Jobs(), p.Rows(), s.Description)
	}
	return nil
}

func metrics() error {
	for _, line := range scenario.MetricDocs() {
		fmt.Println(line)
	}
	return nil
}

func validate(paths []string) error {
	if len(paths) == 0 {
		specs, err := scenario.Catalog()
		if err != nil {
			return err
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				return err
			}
			fmt.Printf("builtin %s: ok\n", s.Name)
		}
		return nil
	}
	for _, path := range paths {
		s, err := scenario.LoadFile(path)
		if err != nil {
			return err
		}
		if err := s.Validate(); err != nil {
			return err
		}
		fmt.Printf("%s: ok\n", path)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		parallel = fs.Int("parallel", 0, "worker pool size (0 = all CPUs); results are identical at any value")
		cacheDir = fs.String("cache", "", "cache completed cells as JSON in this directory; re-runs skip them")
		csvDir   = fs.String("csv", "", "directory to write per-scenario CSV files")
		quiet    = fs.Bool("quiet", false, "suppress progress/ETA output on stderr")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	)
	// Accept flags before or after the scenario names.
	var names []string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return err
		}
		rest := fs.Args()
		if len(rest) == len(args) {
			// Parse consumed nothing: the head is a non-flag argument.
			names = append(names, rest[0])
			rest = rest[1:]
		}
		args = rest
	}
	if len(names) == 0 {
		return fmt.Errorf("run: need a built-in scenario name or spec file (see 'scenario list')")
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	opt := scenario.RunOptions{Parallel: *parallel, CacheDir: *cacheDir, Progress: progress}

	for _, name := range names {
		s, err := load(name)
		if err != nil {
			return err
		}
		tbl, err := scenario.Run(s, opt)
		if err != nil {
			return err
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				return err
			}
		}
	}
	return nil
}

// load resolves a run argument: a path to a spec file if it names one
// on disk (or looks like a path), a built-in catalog entry otherwise.
func load(name string) (*scenario.Spec, error) {
	if _, err := os.Stat(name); err == nil {
		return scenario.LoadFile(name)
	}
	if strings.ContainsAny(name, "/.") {
		return scenario.LoadFile(name)
	}
	return scenario.ByName(name)
}

func writeCSV(dir string, tbl *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
