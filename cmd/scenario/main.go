// Command scenario runs declarative experiment specs: JSON files (or
// built-in catalog entries) describing memory geometry, mitigation and
// PaCRAM configuration, per-core workloads and sweep axes, compiled
// onto the parallel sweep engine. It is the front door to experiments
// the paper's figure drivers never hard-coded.
//
// Usage:
//
//	scenario list [-remote URL]       # built-in catalog
//	scenario metrics [-remote URL]    # per-member metric reference
//	scenario validate [-remote URL] [file...]
//	scenario run [flags] <name|file>...
//
// Examples:
//
//	scenario run hammer-victim
//	scenario run fig17 -parallel 8 -cache .pacram-cache -csv out/
//	scenario validate my-experiment.json
//	scenario run my-experiment.json -quiet
//
// With -remote URL the command talks to a pacramd sweep server
// instead of simulating locally; run output is byte-identical either
// way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"pacram/internal/exp"
	"pacram/internal/scenario"
	"pacram/internal/service"
	"pacram/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list(os.Args[2:])
	case "metrics":
		err = metrics(os.Args[2:])
	case "validate":
		err = validate(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  scenario list [-remote URL]       list the built-in catalog
  scenario metrics [-remote URL]    list the per-member metrics columns can use
  scenario validate [-remote URL] [file...]
                                    validate spec files (no args: the catalog)
  scenario run [flags] <name|file>  run built-in scenarios or spec files

run flags:
  -remote URL      run on a pacramd sweep server instead of locally;
                   output is byte-identical to a local run
  -parallel N      worker pool size (0 = all CPUs); results identical at any value
  -cache DIR       persist per-cell results; re-runs skip finished cells
  -store URL       also read/write cells on a pacramd cache origin at URL
  -csv DIR         also write per-scenario CSV files
  -quiet           suppress progress/ETA output on stderr
  -cpuprofile FILE write a CPU profile (go tool pprof)
  -trace FILE      record a per-cell span trace as JSONL (see cmd/tracetool)
`)
}

// remoteFlag parses the flags shared by the reference subcommands.
func remoteFlag(name string, args []string) (remote string, rest []string, err error) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	r := fs.String("remote", "", "pacramd server URL")
	if err := fs.Parse(args); err != nil {
		return "", nil, err
	}
	return *r, fs.Args(), nil
}

func list(args []string) error {
	remote, rest, err := remoteFlag("list", args)
	if err != nil {
		return err
	}
	if len(rest) > 0 {
		return fmt.Errorf("list: unexpected argument %q", rest[0])
	}
	if remote != "" {
		entries, err := service.NewClient(remote).Catalog()
		if err != nil {
			return err
		}
		for _, e := range entries {
			printCatalogEntry(os.Stdout, e.Name, e.Cells, e.Rows, e.Profile, e.Source, e.Description)
		}
		return nil
	}
	specs, err := scenario.Catalog()
	if err != nil {
		return err
	}
	for _, s := range specs {
		p, err := s.Compile()
		if err != nil {
			return err
		}
		printCatalogEntry(os.Stdout, s.Name, p.Jobs(), p.Rows(), s.MemoryProfile(), s.Sources(), s.Description)
	}
	return nil
}

// printCatalogEntry is the one list-line format, shared by the local
// and remote branches so their output cannot drift apart. An old
// server omits profile/source; the columns print empty rather than
// shifting.
func printCatalogEntry(w io.Writer, name string, cells, rows int, profile, source, desc string) {
	fmt.Fprintf(w, "%-20s %3d cells, %2d rows  %-12s %-26s %s\n", name, cells, rows, profile, source, desc)
}

func metrics(args []string) error {
	remote, rest, err := remoteFlag("metrics", args)
	if err != nil {
		return err
	}
	if len(rest) > 0 {
		return fmt.Errorf("metrics: unexpected argument %q", rest[0])
	}
	var lines []string
	if remote != "" {
		if lines, err = service.NewClient(remote).MetricDocs(); err != nil {
			return err
		}
	} else {
		lines = scenario.MetricDocs()
	}
	for _, line := range lines {
		fmt.Println(line)
	}
	return nil
}

func validate(args []string) error {
	remote, paths, err := remoteFlag("validate", args)
	if err != nil {
		return err
	}
	if remote != "" {
		return validateRemote(service.NewClient(remote), paths)
	}
	if len(paths) == 0 {
		specs, err := scenario.Catalog()
		if err != nil {
			return err
		}
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				return err
			}
			fmt.Printf("builtin %s: ok\n", s.Name)
		}
		return nil
	}
	for _, path := range paths {
		s, err := scenario.LoadFile(path)
		if err != nil {
			return err
		}
		if err := s.Validate(); err != nil {
			return err
		}
		fmt.Printf("%s: ok\n", path)
	}
	return nil
}

// validateRemote routes validation through the server: catalog names
// when no files are given, raw spec documents otherwise.
func validateRemote(c *service.Client, paths []string) error {
	if len(paths) == 0 {
		entries, err := c.Catalog()
		if err != nil {
			return err
		}
		for _, e := range entries {
			if _, err := c.Validate(service.SubmitRequest{Scenario: e.Name}); err != nil {
				return err
			}
			fmt.Printf("builtin %s: ok\n", e.Name)
		}
		return nil
	}
	for _, path := range paths {
		// Parse locally first — exactly like run's remote path — so
		// malformed JSON fails with the file path attached instead of
		// an anonymous server-side 422.
		s, err := scenario.LoadFile(path)
		if err != nil {
			return err
		}
		raw, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := c.Validate(service.SubmitRequest{Spec: raw}); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: ok\n", path)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		remote   = fs.String("remote", "", "run on a pacramd sweep server at this URL instead of locally")
		parallel = fs.Int("parallel", 0, "worker pool size (0 = all CPUs); results are identical at any value")
		cacheDir = fs.String("cache", "", "cache completed cells as JSON in this directory; re-runs skip them")
		storeURL = fs.String("store", "", "also read/write cells on a pacramd cache origin at this URL")
		csvDir   = fs.String("csv", "", "directory to write per-scenario CSV files")
		quiet    = fs.Bool("quiet", false, "suppress progress/ETA output on stderr")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		traceOut = fs.String("trace", "", "record a per-cell span trace (JSONL) to this file (see cmd/tracetool)")
	)
	// Accept flags before or after the scenario names.
	var names []string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return err
		}
		rest := fs.Args()
		if len(rest) == len(args) {
			// Parse consumed nothing: the head is a non-flag argument.
			names = append(names, rest[0])
			rest = rest[1:]
		}
		args = rest
	}
	if len(names) == 0 {
		return fmt.Errorf("run: need a built-in scenario name or spec file (see 'scenario list')")
	}

	if *remote != "" {
		// Execution knobs belong to the server in remote mode;
		// rejecting them beats silently running with different
		// semantics than the flags promise.
		switch {
		case *parallel != 0:
			return fmt.Errorf("run: -parallel is a local execution knob; the server's -parallel governs remote runs")
		case *cacheDir != "":
			return fmt.Errorf("run: -cache is a local execution knob; the server owns the remote result store")
		case *storeURL != "":
			return fmt.Errorf("run: -store is a local execution knob; configure the server's -store instead")
		case *cpuprof != "":
			return fmt.Errorf("run: -cpuprofile profiles local execution; it cannot profile the server")
		case *traceOut != "":
			return fmt.Errorf("run: -trace records local execution; use pacramd's -trace for server-side traces")
		}
		return runRemote(service.NewClient(*remote), names, *csvDir, *quiet)
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	opt := scenario.RunOptions{Parallel: *parallel, CacheDir: *cacheDir, StoreURL: *storeURL, Progress: progress}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		tw := telemetry.NewTraceWriter(f)
		// Tracing is observability: surface a failed write as a warning
		// after the runs, never as a failed sweep.
		defer func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "scenario: warning: trace write degraded: %v\n", err)
			}
		}()
		opt.Trace = tw
	}

	for _, name := range names {
		s, err := load(name)
		if err != nil {
			return err
		}
		// Each scenario's spans carry its name as the trace ID, so a
		// multi-scenario run yields one file tracetool can still group.
		opt.TraceID = s.Name
		tbl, err := scenario.Run(s, opt)
		if err != nil {
			return err
		}
		if err := tbl.Fprint(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tbl); err != nil {
				return err
			}
		}
	}
	return nil
}

// runRemote submits each scenario to the server, streams progress,
// and prints the server-rendered table — the exact bytes a local run
// prints.
func runRemote(c *service.Client, names []string, csvDir string, quiet bool) error {
	for _, name := range names {
		req, label, err := submitRequest(name)
		if err != nil {
			return err
		}
		st, err := c.Submit(req)
		if err != nil {
			return err
		}
		final, err := c.Watch(context.Background(), st.ID, remoteProgress(label, quiet))
		if err != nil {
			return err
		}
		if final.State != service.StateDone {
			if !quiet {
				fmt.Fprintf(os.Stderr, "\r%-70s\n", fmt.Sprintf("%s: %s after %d/%d cells on %s",
					label, final.State, final.Done, final.Cells, st.ID))
			}
			return fmt.Errorf("%s", final.Error)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "\r%-70s\n", fmt.Sprintf("%s: %d/%d cells done on %s (%d cached, %d coalesced)",
				label, final.Done, final.Cells, st.ID, final.Cached, final.Coalesced))
		}
		table, err := c.Table(st.ID)
		if err != nil {
			return err
		}
		os.Stdout.Write(table)
		if csvDir != "" {
			csv, err := c.CSV(st.ID)
			if err != nil {
				return err
			}
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(csvDir, final.TableID+".csv"), csv, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// submitRequest maps a run argument onto the wire: spec files are
// loaded and sent inline, anything else is a catalog name the server
// resolves. The file-vs-name decision is shared with local load(), so
// the same argument resolves identically with and without -remote.
func submitRequest(name string) (service.SubmitRequest, string, error) {
	if !looksLikeFile(name) {
		return service.SubmitRequest{Scenario: name}, name, nil
	}
	s, err := scenario.LoadFile(name)
	if err != nil {
		return service.SubmitRequest{}, "", err
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return service.SubmitRequest{}, "", err
	}
	return service.SubmitRequest{Spec: raw}, s.Name, nil
}

// remoteProgress returns a rate-limited per-cell progress printer
// mirroring the local runner's stderr lines.
func remoteProgress(label string, quiet bool) func(service.CellEvent) {
	if quiet {
		return nil
	}
	start := time.Now()
	last := time.Time{}
	var cached, coalesced, done int
	return func(ev service.CellEvent) {
		if ev.Cached {
			cached++
		}
		if ev.Coalesced {
			coalesced++
		}
		// Events arrive in completion order, not Done order; the
		// printed counter only ever advances.
		if ev.Done > done {
			done = ev.Done
		}
		now := time.Now()
		if now.Sub(last) < 500*time.Millisecond && done != ev.Total {
			return
		}
		last = now
		line := fmt.Sprintf("%s: %d/%d cells", label, done, ev.Total)
		if cached+coalesced > 0 {
			line += fmt.Sprintf(" (%d cached, %d coalesced)", cached, coalesced)
		}
		line += fmt.Sprintf(", elapsed %s", time.Since(start).Round(100*time.Millisecond))
		fmt.Fprintf(os.Stderr, "\r%-70s", line)
	}
}

// looksLikeFile decides whether a run argument names a spec file: it
// exists on disk, or it looks like a path.
func looksLikeFile(name string) bool {
	if _, err := os.Stat(name); err == nil {
		return true
	}
	return strings.ContainsAny(name, "/.")
}

// load resolves a run argument: a path to a spec file if it names one
// on disk (or looks like a path), a built-in catalog entry otherwise.
func load(name string) (*scenario.Spec, error) {
	if looksLikeFile(name) {
		return scenario.LoadFile(name)
	}
	return scenario.ByName(name)
}

func writeCSV(dir string, tbl *exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tbl.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tbl.WriteCSV(f)
}
