package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pacram/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden tables from the current output")

// TestRunGolden pins the rendered table of the trace-replay and
// directed-attack catalog scenarios byte for byte against committed
// fixtures. The sweep engine guarantees byte-identical tables at any
// -parallel, so the fixture is stable; a diff means a real behavior
// change (re-run with -update to accept an intentional one).
func TestRunGolden(t *testing.T) {
	for _, name := range []string{"profile-sweep", "prac-stress"} {
		t.Run(name, func(t *testing.T) {
			s, err := scenario.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := scenario.Run(s, scenario.RunOptions{Parallel: 2})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tbl.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("table differs from golden (re-run with -update to accept):\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
			}
		})
	}
}

// TestListColumns checks the catalog listing's profile/source columns:
// the shared line format renders them, and the new catalog entries
// report the values the columns exist to surface.
func TestListColumns(t *testing.T) {
	var buf bytes.Buffer
	printCatalogEntry(&buf, "profile-sweep", 4, 4, "4 profiles", "workload+trace", "desc")
	line := buf.String()
	for _, want := range []string{"profile-sweep", "4 cells", "4 profiles", "workload+trace", "desc"} {
		if !strings.Contains(line, want) {
			t.Errorf("list line missing %q: %q", want, line)
		}
	}

	wantCols := map[string][2]string{
		"profile-sweep": {"4 profiles", "workload+trace"},
		"prac-stress":   {"default", "workload+attacker"},
	}
	specs, err := scenario.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, s := range specs {
		want, ok := wantCols[s.Name]
		if !ok {
			continue
		}
		seen++
		if got := s.MemoryProfile(); got != want[0] {
			t.Errorf("%s: MemoryProfile() = %q, want %q", s.Name, got, want[0])
		}
		if got := s.Sources(); got != want[1] {
			t.Errorf("%s: Sources() = %q, want %q", s.Name, got, want[1])
		}
	}
	if seen != len(wantCols) {
		t.Errorf("found %d of %d expected catalog entries", seen, len(wantCols))
	}
}
